//! Record framing and segment scanning for the write-ahead log.
//!
//! Each record on disk is `[u32 BE payload length][u32 BE CRC-32 of the
//! payload][payload]`. The payload is the canonical DER of one
//! [`crate::StoreEvent`]. A crash during `append` leaves a *torn tail*:
//! a partial header, or a full header with a short or CRC-failing
//! payload. Scanning distinguishes the two situations a damaged record
//! can mean:
//!
//! * at the tail of the **newest** segment it is the expected residue of
//!   a crash — scanning stops there and reports `torn = true`;
//! * anywhere else it is real corruption and must surface as an error,
//!   because silently dropping records would resurrect lost jobs as
//!   duplicates or vanish completed ones.

use crate::crc::crc32;
use crate::error::StoreError;

/// Bytes of framing before each record payload (length + CRC).
pub const RECORD_HEADER_LEN: usize = 8;

/// Frames `payload` as one WAL record.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    encode_record_into(payload, &mut out);
    out
}

/// Frames `payload` appending to `out` — a group-committed batch
/// accumulates all its frames in one buffer for one backend write.
pub fn encode_record_into(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// What decoding one record frame yielded.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A complete, CRC-verified record; `consumed` covers header + payload.
    Record {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Total frame length consumed from the buffer.
        consumed: usize,
    },
    /// The buffer ends before the record does (torn write).
    Incomplete,
    /// The record is complete but its CRC does not match.
    BadCrc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the payload actually on disk.
        computed: u32,
    },
}

/// Decodes the record frame at the start of `buf`.
///
/// An empty buffer is `Incomplete` (a clean end of segment looks the same
/// as a torn one to this layer; the scanner tells them apart by offset).
pub fn decode_record(buf: &[u8]) -> Decoded<'_> {
    if buf.len() < RECORD_HEADER_LEN {
        return Decoded::Incomplete;
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let stored = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let end = RECORD_HEADER_LEN + len;
    if buf.len() < end {
        return Decoded::Incomplete;
    }
    let payload = &buf[RECORD_HEADER_LEN..end];
    let computed = crc32(payload);
    if computed != stored {
        return Decoded::BadCrc { stored, computed };
    }
    Decoded::Record {
        payload,
        consumed: end,
    }
}

/// The payloads recovered from one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// Verified record payloads, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Whether the segment ended in a torn or corrupt record.
    pub torn: bool,
}

/// Scans a whole segment.
///
/// `allow_torn_tail` is true only for the newest segment: damage there is
/// treated as the crash residue and scanning stops cleanly. In any older
/// segment (or a snapshot) damage is a hard [`StoreError::Corrupt`].
pub fn scan_segment(
    name: &str,
    data: &[u8],
    allow_torn_tail: bool,
) -> Result<SegmentScan, StoreError> {
    let mut payloads = Vec::new();
    let mut offset = 0;
    while offset < data.len() {
        match decode_record(&data[offset..]) {
            Decoded::Record { payload, consumed } => {
                payloads.push(payload.to_vec());
                offset += consumed;
            }
            Decoded::Incomplete => {
                if allow_torn_tail {
                    return Ok(SegmentScan {
                        payloads,
                        torn: true,
                    });
                }
                return Err(StoreError::Corrupt {
                    segment: name.to_owned(),
                    offset,
                    reason: "truncated record".into(),
                });
            }
            Decoded::BadCrc { stored, computed } => {
                if allow_torn_tail {
                    return Ok(SegmentScan {
                        payloads,
                        torn: true,
                    });
                }
                return Err(StoreError::Corrupt {
                    segment: name.to_owned(),
                    offset,
                    reason: format!("crc mismatch: stored {stored:08x}, computed {computed:08x}"),
                });
            }
        }
    }
    Ok(SegmentScan {
        payloads,
        torn: false,
    })
}

/// Formats the name of log segment `seq`.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

/// Formats the name of the snapshot covering segments `< seq`.
pub fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:08}.der")
}

/// Parses a blob name as a log segment, yielding its sequence number.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Parses a blob name as a snapshot, yielding its sequence number.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".der")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let rec = encode_record(b"payload");
        assert_eq!(rec.len(), RECORD_HEADER_LEN + 7);
        match decode_record(&rec) {
            Decoded::Record { payload, consumed } => {
                assert_eq!(payload, b"payload");
                assert_eq!(consumed, rec.len());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let rec = encode_record(b"payload");
        for cut in 0..rec.len() {
            assert_eq!(decode_record(&rec[..cut]), Decoded::Incomplete, "cut {cut}");
        }
    }

    #[test]
    fn corruption_detected() {
        let mut rec = encode_record(b"payload");
        let last = rec.len() - 1;
        rec[last] ^= 0xff;
        assert!(matches!(decode_record(&rec), Decoded::BadCrc { .. }));
    }

    #[test]
    fn scan_stops_at_torn_tail_when_allowed() {
        let mut seg = encode_record(b"one");
        seg.extend(encode_record(b"two"));
        let full = seg.len();
        seg.extend(&encode_record(b"three")[..5]);
        let scan = scan_segment("wal-00000000.seg", &seg, true).unwrap();
        assert_eq!(scan.payloads, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(scan.torn);
        // Same damage in an old segment is corruption.
        let err = scan_segment("wal-00000000.seg", &seg, false).unwrap_err();
        match err {
            StoreError::Corrupt { offset, .. } => assert_eq!(offset, full),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn clean_segment_not_torn() {
        let mut seg = encode_record(b"one");
        seg.extend(encode_record(b"two"));
        let scan = scan_segment("s", &seg, true).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.payloads.len(), 2);
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(segment_name(3), "wal-00000003.seg");
        assert_eq!(parse_segment_name("wal-00000003.seg"), Some(3));
        assert_eq!(snapshot_name(12), "snap-00000012.der");
        assert_eq!(parse_snapshot_name("snap-00000012.der"), Some(12));
        assert_eq!(parse_segment_name("snap-00000012.der"), None);
        assert_eq!(parse_snapshot_name("wal-00000003.seg"), None);
        assert_eq!(parse_segment_name("other.txt"), None);
    }
}
