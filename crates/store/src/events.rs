//! The typed events the NJS and server journal to the WAL.
//!
//! Each event is one DER SEQUENCE wrapped in a context tag carrying the
//! event discriminant, so the log format is self-describing and new
//! event kinds can be added without renumbering.

use unicore_ajo::{ActionId, JobId};
use unicore_codec::{CodecError, DerCodec, Fields, Value};

/// The authenticated owner of a consigned job, as resolved by the UUDB at
/// consign time. Persisted so recovery does not need to re-consult the
/// user database (whose mappings may have changed since).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnerRecord {
    /// Certificate distinguished name (the UNICORE identity).
    pub dn: String,
    /// Xlogin the job runs under at this Vsite.
    pub login: String,
    /// Account group billed for the job.
    pub account_group: String,
}

impl DerCodec for OwnerRecord {
    fn to_value(&self) -> Value {
        Value::Sequence(vec![
            Value::string(&self.dn),
            Value::string(&self.login),
            Value::string(&self.account_group),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "OwnerRecord")?;
        let rec = OwnerRecord {
            dn: f.next_string()?,
            login: f.next_string()?,
            account_group: f.next_string()?,
        };
        f.finish()?;
        Ok(rec)
    }
}

/// Where a job consigned from a peer NJS came from, so the recovered
/// server can still route its outcome back (paper §4.1 sub-jobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignOrigin {
    /// Address of the consigning peer server.
    pub origin: String,
    /// The parent job at the peer.
    pub parent: JobId,
    /// The sub-job node within the parent's AJO.
    pub node: ActionId,
    /// Uspace files the peer expects back with the outcome.
    pub return_files: Vec<String>,
}

impl DerCodec for ForeignOrigin {
    fn to_value(&self) -> Value {
        Value::Sequence(vec![
            Value::string(&self.origin),
            Value::Integer(self.parent.0 as i64),
            Value::Integer(self.node.0 as i64),
            Value::Sequence(self.return_files.iter().map(Value::string).collect()),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let mut f = Fields::open(value, "ForeignOrigin")?;
        let origin = f.next_string()?;
        let parent = JobId(f.next_u64()?);
        let node = ActionId(f.next_u64()?);
        let return_files = f
            .next_sequence()?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or(CodecError::BadValue("return file name"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        f.finish()?;
        Ok(ForeignOrigin {
            origin,
            parent,
            node,
            return_files,
        })
    }
}

fn files_value(files: &[(String, Vec<u8>)]) -> Value {
    Value::Sequence(
        files
            .iter()
            .map(|(name, data)| {
                Value::Sequence(vec![Value::string(name), Value::bytes(data.clone())])
            })
            .collect(),
    )
}

fn files_from(value: &Value) -> Result<Vec<(String, Vec<u8>)>, CodecError> {
    let items = value
        .as_sequence()
        .ok_or(CodecError::BadValue("file list"))?;
    items
        .iter()
        .map(|item| {
            let mut f = Fields::open(item, "file entry")?;
            let name = f.next_string()?;
            let data = f.next_bytes()?.to_vec();
            f.finish()?;
            Ok((name, data))
        })
        .collect()
}

/// One durable fact about a job's lifecycle.
///
/// The WAL is the sequence of these events; replaying them rebuilds the
/// NJS job table and the server's idempotency index exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreEvent {
    /// A job was accepted (consign path): the full AJO, the resolved
    /// owner, the staged input files, and the idempotency key the server
    /// uses to deduplicate re-delivered Consigns.
    JobConsigned {
        /// The job id assigned at consign time.
        job: JobId,
        /// Canonical DER of the consigned AJO.
        ajo_der: Vec<u8>,
        /// Resolved owner (UUDB mapping at consign time).
        user: OwnerRecord,
        /// Input files staged into the job's uspace at consign.
        staged: Vec<(String, Vec<u8>)>,
        /// Idempotency key (hash of consigner identity + AJO bytes).
        idem_key: Vec<u8>,
        /// Set when the job is a local child of another job here (the
        /// parent job and the sub-job node it fills).
        parent: Option<(JobId, ActionId)>,
        /// Set when the job is a sub-job consigned by a peer server.
        foreign: Option<ForeignOrigin>,
        /// Simulation timestamp (microseconds).
        at: u64,
    },
    /// A node of the job was incarnated and handed to a concrete target
    /// (batch queue, peer Vsite, ...).
    JobIncarnated {
        /// The owning job.
        job: JobId,
        /// The incarnated node.
        node: ActionId,
        /// Human-readable target description (queue or peer address).
        target: String,
        /// Simulation timestamp.
        at: u64,
    },
    /// A node reached a terminal state; its per-node outcome (DER of the
    /// `OutcomeNode`) and any files it deposited in the uspace.
    TaskStateChanged {
        /// The owning job.
        job: JobId,
        /// The node that finished.
        node: ActionId,
        /// Canonical DER of the node's `OutcomeNode`.
        outcome_der: Vec<u8>,
        /// Files the task wrote into the uspace (name, contents).
        files: Vec<(String, Vec<u8>)>,
        /// Simulation timestamp.
        at: u64,
    },
    /// The whole job finished: its assembled `JobOutcome` and a manifest
    /// of the uspace files the client may still fetch.
    OutcomeStored {
        /// The finished job.
        job: JobId,
        /// Canonical DER of the assembled `JobOutcome` tree.
        outcome_der: Vec<u8>,
        /// Full uspace manifest at completion (name, contents).
        manifest: Vec<(String, Vec<u8>)>,
        /// Simulation timestamp.
        at: u64,
    },
    /// The job's outcome was retrieved and its uspace reclaimed; all of
    /// its history may be dropped at the next compaction.
    JobPurged {
        /// The purged job.
        job: JobId,
        /// Simulation timestamp.
        at: u64,
    },
    /// An inbound streamed transfer (data plane) was accepted by this
    /// receiving NJS: the full manifest and the local login it maps to.
    /// Replay re-opens the receiver state, so a rebooted Usite answers a
    /// re-offer with its resume point instead of starting over.
    TransferOpened {
        /// The sending Usite.
        origin: String,
        /// The sending job.
        origin_job: JobId,
        /// The sending Transfer task node.
        origin_node: ActionId,
        /// Canonical DER of the `TransferManifest`.
        manifest_der: Vec<u8>,
        /// Local login the sender's DN mapped to at offer time.
        login: String,
        /// Simulation timestamp.
        at: u64,
    },
    /// The broker (re)targeted a sub-job node: the Vsite it chose and
    /// the Usites excluded at decision time (already tried, quarantined,
    /// or dark). Journaled *before* the forward leaves, so a replay of
    /// the same seed must produce a byte-identical sequence of these
    /// events — the E16 determinism contract.
    PlacementDecided {
        /// The parent job at this origin.
        job: JobId,
        /// The sub-job node being placed.
        node: ActionId,
        /// The chosen Vsite, as "USITE/VSITE".
        chosen: String,
        /// Usites excluded from this decision, in ranking-input order.
        excluded: Vec<String>,
        /// Retarget attempt: 0 for the initial placement, 1.. after.
        attempt: u32,
        /// Simulation timestamp.
        at: u64,
    },
    /// A verified chunk of an open transfer was durably stored. These
    /// events double as the delivered file's durability: Xspace contents
    /// are not otherwise journaled, so replay republishes the file.
    TransferChunkStored {
        /// The sending Usite.
        origin: String,
        /// The sending job.
        origin_job: JobId,
        /// The sending Transfer task node.
        origin_node: ActionId,
        /// Chunk index within the manifest.
        index: u64,
        /// The chunk's bytes (already checksum-verified).
        data: Vec<u8>,
        /// Simulation timestamp.
        at: u64,
    },
}

impl StoreEvent {
    /// The job this event belongs to. Transfer events are site-scoped,
    /// not job-scoped: they report the sentinel `JobId(0)` (real job ids
    /// start at 1), which compaction never classifies as done or purged —
    /// exactly right, since chunk events are the delivered file's only
    /// durable copy.
    pub fn job(&self) -> JobId {
        match self {
            StoreEvent::JobConsigned { job, .. }
            | StoreEvent::JobIncarnated { job, .. }
            | StoreEvent::TaskStateChanged { job, .. }
            | StoreEvent::OutcomeStored { job, .. }
            | StoreEvent::PlacementDecided { job, .. }
            | StoreEvent::JobPurged { job, .. } => *job,
            StoreEvent::TransferOpened { .. } | StoreEvent::TransferChunkStored { .. } => JobId(0),
        }
    }
}

const TAG_CONSIGNED: u8 = 0;
const TAG_INCARNATED: u8 = 1;
const TAG_TASK_STATE: u8 = 2;
const TAG_OUTCOME: u8 = 3;
const TAG_PURGED: u8 = 4;
const TAG_TRANSFER_OPENED: u8 = 5;
const TAG_TRANSFER_CHUNK: u8 = 6;
const TAG_PLACEMENT: u8 = 7;

impl DerCodec for StoreEvent {
    fn to_value(&self) -> Value {
        match self {
            StoreEvent::JobConsigned {
                job,
                ajo_der,
                user,
                staged,
                idem_key,
                parent,
                foreign,
                at,
            } => {
                let mut fields = vec![
                    Value::Integer(job.0 as i64),
                    Value::bytes(ajo_der.clone()),
                    user.to_value(),
                    files_value(staged),
                    Value::bytes(idem_key.clone()),
                    Value::Integer(*at as i64),
                ];
                if let Some((pjob, pnode)) = parent {
                    fields.push(Value::tagged(
                        1,
                        Value::Sequence(vec![
                            Value::Integer(pjob.0 as i64),
                            Value::Integer(pnode.0 as i64),
                        ]),
                    ));
                }
                if let Some(origin) = foreign {
                    fields.push(Value::tagged(0, origin.to_value()));
                }
                Value::tagged(TAG_CONSIGNED, Value::Sequence(fields))
            }
            StoreEvent::JobIncarnated {
                job,
                node,
                target,
                at,
            } => Value::tagged(
                TAG_INCARNATED,
                Value::Sequence(vec![
                    Value::Integer(job.0 as i64),
                    Value::Integer(node.0 as i64),
                    Value::string(target),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::TaskStateChanged {
                job,
                node,
                outcome_der,
                files,
                at,
            } => Value::tagged(
                TAG_TASK_STATE,
                Value::Sequence(vec![
                    Value::Integer(job.0 as i64),
                    Value::Integer(node.0 as i64),
                    Value::bytes(outcome_der.clone()),
                    files_value(files),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::OutcomeStored {
                job,
                outcome_der,
                manifest,
                at,
            } => Value::tagged(
                TAG_OUTCOME,
                Value::Sequence(vec![
                    Value::Integer(job.0 as i64),
                    Value::bytes(outcome_der.clone()),
                    files_value(manifest),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::JobPurged { job, at } => Value::tagged(
                TAG_PURGED,
                Value::Sequence(vec![
                    Value::Integer(job.0 as i64),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::TransferOpened {
                origin,
                origin_job,
                origin_node,
                manifest_der,
                login,
                at,
            } => Value::tagged(
                TAG_TRANSFER_OPENED,
                Value::Sequence(vec![
                    Value::string(origin),
                    Value::Integer(origin_job.0 as i64),
                    Value::Integer(origin_node.0 as i64),
                    Value::bytes(manifest_der.clone()),
                    Value::string(login),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::PlacementDecided {
                job,
                node,
                chosen,
                excluded,
                attempt,
                at,
            } => Value::tagged(
                TAG_PLACEMENT,
                Value::Sequence(vec![
                    Value::Integer(job.0 as i64),
                    Value::Integer(node.0 as i64),
                    Value::string(chosen),
                    Value::Sequence(excluded.iter().map(Value::string).collect()),
                    Value::Integer(*attempt as i64),
                    Value::Integer(*at as i64),
                ]),
            ),
            StoreEvent::TransferChunkStored {
                origin,
                origin_job,
                origin_node,
                index,
                data,
                at,
            } => Value::tagged(
                TAG_TRANSFER_CHUNK,
                Value::Sequence(vec![
                    Value::string(origin),
                    Value::Integer(origin_job.0 as i64),
                    Value::Integer(origin_node.0 as i64),
                    Value::Integer(*index as i64),
                    Value::bytes(data.clone()),
                    Value::Integer(*at as i64),
                ]),
            ),
        }
    }

    fn from_value(value: &Value) -> Result<Self, CodecError> {
        let Value::Tagged(tag, inner) = value else {
            return Err(CodecError::BadValue("store event: expected tagged value"));
        };
        match *tag {
            TAG_CONSIGNED => {
                let mut f = Fields::open(inner, "JobConsigned")?;
                let job = JobId(f.next_u64()?);
                let ajo_der = f.next_bytes()?.to_vec();
                let user = OwnerRecord::from_value(f.next_value()?)?;
                let staged = files_from(f.next_value()?)?;
                let idem_key = f.next_bytes()?.to_vec();
                let at = f.next_u64()?;
                let parent = match f.optional_tagged(1) {
                    Some(v) => {
                        let mut p = Fields::open(v, "JobConsigned.parent")?;
                        let pjob = JobId(p.next_u64()?);
                        let pnode = ActionId(p.next_u64()?);
                        p.finish()?;
                        Some((pjob, pnode))
                    }
                    None => None,
                };
                let foreign = match f.optional_tagged(0) {
                    Some(v) => Some(ForeignOrigin::from_value(v)?),
                    None => None,
                };
                f.finish()?;
                Ok(StoreEvent::JobConsigned {
                    job,
                    ajo_der,
                    user,
                    staged,
                    idem_key,
                    parent,
                    foreign,
                    at,
                })
            }
            TAG_INCARNATED => {
                let mut f = Fields::open(inner, "JobIncarnated")?;
                let ev = StoreEvent::JobIncarnated {
                    job: JobId(f.next_u64()?),
                    node: ActionId(f.next_u64()?),
                    target: f.next_string()?,
                    at: f.next_u64()?,
                };
                f.finish()?;
                Ok(ev)
            }
            TAG_TASK_STATE => {
                let mut f = Fields::open(inner, "TaskStateChanged")?;
                let job = JobId(f.next_u64()?);
                let node = ActionId(f.next_u64()?);
                let outcome_der = f.next_bytes()?.to_vec();
                let files = files_from(f.next_value()?)?;
                let at = f.next_u64()?;
                f.finish()?;
                Ok(StoreEvent::TaskStateChanged {
                    job,
                    node,
                    outcome_der,
                    files,
                    at,
                })
            }
            TAG_OUTCOME => {
                let mut f = Fields::open(inner, "OutcomeStored")?;
                let job = JobId(f.next_u64()?);
                let outcome_der = f.next_bytes()?.to_vec();
                let manifest = files_from(f.next_value()?)?;
                let at = f.next_u64()?;
                f.finish()?;
                Ok(StoreEvent::OutcomeStored {
                    job,
                    outcome_der,
                    manifest,
                    at,
                })
            }
            TAG_PURGED => {
                let mut f = Fields::open(inner, "JobPurged")?;
                let ev = StoreEvent::JobPurged {
                    job: JobId(f.next_u64()?),
                    at: f.next_u64()?,
                };
                f.finish()?;
                Ok(ev)
            }
            TAG_TRANSFER_OPENED => {
                let mut f = Fields::open(inner, "TransferOpened")?;
                let ev = StoreEvent::TransferOpened {
                    origin: f.next_string()?,
                    origin_job: JobId(f.next_u64()?),
                    origin_node: ActionId(f.next_u64()?),
                    manifest_der: f.next_bytes()?.to_vec(),
                    login: f.next_string()?,
                    at: f.next_u64()?,
                };
                f.finish()?;
                Ok(ev)
            }
            TAG_PLACEMENT => {
                let mut f = Fields::open(inner, "PlacementDecided")?;
                let job = JobId(f.next_u64()?);
                let node = ActionId(f.next_u64()?);
                let chosen = f.next_string()?;
                let excluded = f
                    .next_sequence()?
                    .iter()
                    .map(|v| {
                        v.as_str()
                            .map(str::to_owned)
                            .ok_or(CodecError::BadValue("excluded Usite name"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let attempt = f.next_u32()?;
                let at = f.next_u64()?;
                f.finish()?;
                Ok(StoreEvent::PlacementDecided {
                    job,
                    node,
                    chosen,
                    excluded,
                    attempt,
                    at,
                })
            }
            TAG_TRANSFER_CHUNK => {
                let mut f = Fields::open(inner, "TransferChunkStored")?;
                let ev = StoreEvent::TransferChunkStored {
                    origin: f.next_string()?,
                    origin_job: JobId(f.next_u64()?),
                    origin_node: ActionId(f.next_u64()?),
                    index: f.next_u64()?,
                    data: f.next_bytes()?.to_vec(),
                    at: f.next_u64()?,
                };
                f.finish()?;
                Ok(ev)
            }
            _ => Err(CodecError::BadValue("store event: unknown tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_owner() -> OwnerRecord {
        OwnerRecord {
            dn: "C=DE, O=FZJ, CN=alice".into(),
            login: "alice1".into(),
            account_group: "proj42".into(),
        }
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            StoreEvent::JobConsigned {
                job: JobId(7),
                ajo_der: vec![0x30, 0x00],
                user: sample_owner(),
                staged: vec![("input.dat".into(), vec![1, 2, 3])],
                idem_key: vec![0xaa; 32],
                parent: Some((JobId(2), ActionId(9))),
                foreign: Some(ForeignOrigin {
                    origin: "FZJ/T3E".into(),
                    parent: JobId(3),
                    node: ActionId(5),
                    return_files: vec!["result.dat".into()],
                }),
                at: 1_000_000,
            },
            StoreEvent::JobConsigned {
                job: JobId(8),
                ajo_der: vec![0x30, 0x00],
                user: sample_owner(),
                staged: vec![],
                idem_key: vec![0xbb; 32],
                parent: None,
                foreign: None,
                at: 2_000_000,
            },
            StoreEvent::JobIncarnated {
                job: JobId(7),
                node: ActionId(1),
                target: "batch:express".into(),
                at: 3,
            },
            StoreEvent::TaskStateChanged {
                job: JobId(7),
                node: ActionId(1),
                outcome_der: vec![0x30, 0x00],
                files: vec![("stdout".into(), b"hello".to_vec())],
                at: 4,
            },
            StoreEvent::OutcomeStored {
                job: JobId(7),
                outcome_der: vec![0x30, 0x00],
                manifest: vec![("stdout".into(), b"hello".to_vec())],
                at: 5,
            },
            StoreEvent::JobPurged {
                job: JobId(7),
                at: 6,
            },
            StoreEvent::PlacementDecided {
                job: JobId(7),
                node: ActionId(4),
                chosen: "ZIB/T3E".into(),
                excluded: vec!["FZJ".into(), "RUS".into()],
                attempt: 1,
                at: 9,
            },
            StoreEvent::TransferOpened {
                origin: "FZJ".into(),
                origin_job: JobId(7),
                origin_node: ActionId(2),
                manifest_der: vec![0x30, 0x00],
                login: "alice1".into(),
                at: 7,
            },
            StoreEvent::TransferChunkStored {
                origin: "FZJ".into(),
                origin_job: JobId(7),
                origin_node: ActionId(2),
                index: 3,
                data: vec![0xcd; 17],
                at: 8,
            },
        ];
        for ev in events {
            let back = StoreEvent::from_der(&ev.to_der()).unwrap();
            assert_eq!(back, ev);
            assert_eq!(back.job(), ev.job());
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let bogus = Value::tagged(9, Value::Sequence(vec![]));
        assert!(StoreEvent::from_value(&bogus).is_err());
    }
}
