//! Store errors.

use core::fmt;
use unicore_codec::CodecError;

/// Errors from the write-ahead log and event store.
#[derive(Debug)]
pub enum StoreError {
    /// A record or snapshot failed DER decoding.
    Codec(CodecError),
    /// A log segment is damaged somewhere other than its writable tail.
    Corrupt {
        /// The damaged segment's name.
        segment: String,
        /// Byte offset of the bad record frame.
        offset: usize,
        /// What was wrong.
        reason: String,
    },
    /// The storage backend failed (I/O error, or an injected crash).
    Backend(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Codec(e) => write!(f, "store codec error: {e}"),
            StoreError::Corrupt {
                segment,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "corrupt WAL segment {segment} at byte {offset}: {reason}"
                )
            }
            StoreError::Backend(msg) => write!(f, "storage backend error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Backend(e.to_string())
    }
}
