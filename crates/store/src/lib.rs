//! # unicore-store
//!
//! Durable write-ahead job spool for the NJS and the UNICORE server.
//!
//! The paper's robustness claim (§5.3) is that the asynchronous
//! consign/poll protocol "protects against any unreliability" — which is
//! only true if a server restart does not lose the consigned jobs. This
//! crate supplies that durability layer, the step production UNICORE took
//! on its way from research prototype to production grid middleware:
//!
//! * an append-only **write-ahead log** of canonical DER records
//!   (re-using `unicore-codec`) with per-record CRC-32 framing,
//! * **segment rotation** so the log is a series of bounded files,
//! * **snapshot + compaction** folding the history of finished jobs into
//!   a minimal equivalent event sequence,
//! * a typed **event-store API** ([`StoreEvent`]: `JobConsigned`,
//!   `JobIncarnated`, `TaskStateChanged`, `OutcomeStored`, `JobPurged`),
//! * pluggable [`StorageBackend`]s: an in-memory backend whose handle
//!   survives a simulated crash (for deterministic kill-at-any-stage
//!   tests) and a real filesystem backend.
//!
//! Torn tails are expected: replay verifies each record's CRC and stops
//! cleanly at the first incomplete or corrupt record of the *newest*
//! segment — exactly what a crash mid-`append` leaves behind. Corruption
//! anywhere else is reported as an error, never silently skipped.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod crc;
pub mod error;
pub mod events;
pub mod store;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, StorageBackend};
pub use error::StoreError;
pub use events::{ForeignOrigin, OwnerRecord, StoreEvent};
pub use store::{events_by_job, CompactionStats, EventStore, Replay, DEFAULT_ROTATE_AT};
pub use wal::{decode_record, encode_record, Decoded, RECORD_HEADER_LEN};
